// Command samgate fronts a samserve fleet with one endpoint. It places every
// profile on a replica by rendezvous hashing, proxies profile-scoped requests
// (/v1/detect, /v1/detect/batch, /v1/detect/stream, profile CRUD) to the
// owner, scatters /v1/train/batch grids across the replicas owning each
// scenario's profile and merges the results in grid order — byte-identical
// to a single-replica sweep, because training derives all randomness from
// grid coordinates — and repairs placement by shipping profile snapshot
// records: pull-on-miss when an owner answers 404, and an optional periodic
// anti-entropy pass. Replica health is checked in the background and routing
// fails over past unreachable replicas.
//
// Usage:
//
//	samgate -replicas http://h1:8080,http://h2:8080 [-addr :8070]
//	        [-health-interval 2s] [-sync-interval 0] [-no-pull-on-miss]
//	        [-max-body 0] [-retries 4] [-traces N] [-trace-slow 250ms]
//	        [-log-requests N] [-debug-addr :6070] [-log-format text|json]
//
// -sync-interval 0 disables anti-entropy (pull-on-miss still repairs lazily);
// -no-pull-on-miss leaves misses as the owner's 404.
//
// -traces sizes the span ring behind /debug/traces (negative disables
// tracing); a traced gateway starts a span per request and propagates the
// W3C traceparent to the owning replica, so one trace id follows a request
// across the fleet. -debug-addr opens a second listener with pprof, the
// gateway registry under /metrics, the federated fleet scrape under
// /metrics/fleet, and recent spans under /debug/traces. -log-requests
// samples 1-in-N requests to the access log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"samnet/internal/cli"
	"samnet/internal/cluster"
	"samnet/internal/obs"
)

func main() {
	var (
		addr           = flag.String("addr", ":8070", "listen address")
		replicas       = flag.String("replicas", "", "comma-separated samserve base URLs (required)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "replica health sweep period (<=0 disables the background checker)")
		syncInterval   = flag.Duration("sync-interval", 0, "anti-entropy profile sync period (0 = disabled)")
		noPullOnMiss   = flag.Bool("no-pull-on-miss", false, "do not repair owner 404s by pulling the profile from another replica")
		maxBody        = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 8MiB)")
		retries        = flag.Int("retries", 0, "attempts per scatter sub-request on 429 (0 = default 4)")
		traces         = flag.Int("traces", 256, "span ring size behind /debug/traces (negative disables tracing)")
		traceSlow      = flag.Duration("trace-slow", 250*time.Millisecond, "retain spans at or over this duration in the slow ring (0 disables slow capture)")
		logRequests    = flag.Int("log-requests", 0, "log 1-in-N requests with method/path/status/duration/trace id (0 = off)")
		debugAddr      = flag.String("debug-addr", "", "debug listener for pprof, metrics, fleet federation and traces (empty = disabled)")
		logFormat      = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger, err := cli.NewLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samgate:", err)
		os.Exit(2)
	}
	addrs := strings.Split(*replicas, ",")
	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "samgate: -replicas is required (comma-separated samserve URLs)")
		os.Exit(2)
	}

	// -health-interval <= 0 means "check once at boot, never again"; the
	// config's 0 value would select the default, so map it below zero.
	hi := *healthInterval
	if hi <= 0 {
		hi = -1
	}
	// Tracing follows samserve's -decisions convention: 0 means the default
	// ring, negative disables. Disabled tracing costs the proxy path nothing.
	var tracer *obs.Tracer
	if *traces >= 0 {
		size := *traces
		if size == 0 {
			size = 256
		}
		tracer = obs.NewTracer(size, *traceSlow)
	}

	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Replicas:          addrs,
		MaxAttempts:       *retries,
		HealthInterval:    hi,
		SyncInterval:      *syncInterval,
		DisablePullOnMiss: *noPullOnMiss,
		MaxBodyBytes:      *maxBody,
		Tracer:            tracer,
		Logger:            logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	healthy := 0
	for _, st := range gw.Fleet().Statuses() {
		if st.Healthy {
			healthy++
		}
	}
	logger.Info("starting",
		"addr", *addr, "replicas", len(addrs), "healthy", healthy,
		"health_interval", *healthInterval, "sync_interval", *syncInterval,
		"pull_on_miss", !*noPullOnMiss,
		"traces", *traces, "trace_slow", *traceSlow, "log_requests", *logRequests)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           obs.AccessLog(logger, *logRequests, gw.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Scatter-gathered training sweeps and streams run long; the stream
		// handler manages its own idle deadline, and train/batch lifts the
		// write deadline like the replicas do.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(gw),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr,
			"endpoints", "/debug/pprof/ /debug/traces /metrics /metrics/fleet")
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		logger.Error("fatal", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown incomplete", "err", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	gw.Close()
	logger.Info("stopped")
}

// debugMux assembles the gateway's introspection listener: pprof's full
// suite, plus the gateway mux's own metrics, fleet federation and trace
// endpoints — reused so both listeners serve the identical representation.
func debugMux(gw *cluster.Gateway) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", gw.Handler())
	mux.Handle("GET /metrics/fleet", gw.Handler())
	mux.Handle("GET /debug/traces", gw.Handler())
	return mux
}
