// Command samload is the end-to-end serving benchmark for samserve. It
// builds a topology through the library facade, runs multi-path route
// discoveries under normal and wormhole conditions, trains a profile over
// the service API, and then drives the detect endpoints with concurrent
// clients — reporting throughput, latency percentiles, and detection
// accuracy (detection rate on wormhole route sets, false-positive rate on
// normal ones).
//
// Usage:
//
//	samload [-addr http://host:port] [-clients N] [-duration 5s]
//	        [-requests N] [-batch K] [-stream]
//	        [-topo cluster|uniform6x6|uniform10x6]
//	        [-tier K] [-train N] [-corpus N] [-profile name] [-seed S]
//	        [-log-format text|json]
//
// With no -addr, samload starts an in-process samserve on a loopback port
// and benchmarks that, so `samload` alone measures the full serving path.
//
// -stream switches each client from request/response over /v1/detect to the
// NDJSON pipeline on /v1/detect/stream: one long-lived POST per client, with
// a bounded window of requests in flight on the connection. Per-request HTTP
// framing is what caps the lockstep modes at round-trip throughput, so
// -stream is the mode that measures the service's actual scoring capacity.
// It requires -batch 1 (the stream protocol is one route set per line).
//
// Latency percentiles come from the same fixed-bucket histogram the service
// exposes (internal/obs), so client- and server-side latency reports share
// one definition. After the run samload scrapes the server's /metrics and
// logs the server-side counters next to its own. The last stdout line is a
// one-line JSON summary for CI consumption.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	samnet "samnet"
	"samnet/internal/cli"
	"samnet/internal/obs"
	"samnet/internal/service"
)

// logger is the command's structured logger, set before any work begins.
var logger = slog.Default()

type corpusItem struct {
	payload []byte // pre-marshalled request body
	attacks []bool // ground truth per route set in the body
}

func main() {
	var (
		addr      = flag.String("addr", "", "server base URL (empty = start an in-process server)")
		clients   = flag.Int("clients", 32, "concurrent client goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "load duration (ignored when -requests > 0)")
		requests  = flag.Int("requests", 0, "total requests to send (0 = run for -duration)")
		batch     = flag.Int("batch", 1, "route sets per request (1 = /v1/detect, >1 = /v1/detect/batch)")
		stream    = flag.Bool("stream", false, "pipeline requests over /v1/detect/stream (requires -batch 1)")
		topoName  = flag.String("topo", "cluster", "topology: cluster, uniform6x6, uniform10x6, random")
		tier      = flag.Int("tier", 1, "transmission range in grid spacings")
		train     = flag.Int("train", 30, "normal discoveries used to train the profile")
		corpus    = flag.Int("corpus", 64, "evaluation discoveries per condition (normal and attacked)")
		profile   = flag.String("profile", "default", "profile name to train and score against")
		seed      = flag.Uint64("seed", 2005, "master seed")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	if *batch < 1 {
		*batch = 1
	}

	var err error
	if logger, err = cli.NewLogger(*logFormat); err != nil {
		fatal(err)
	}
	if *stream && *batch != 1 {
		fatal(fmt.Errorf("-stream requires -batch 1 (got -batch %d)", *batch))
	}

	base, shutdown := resolveServer(*addr)
	defer shutdown()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	logger.Info("generating route sets", "topo", *topoName, "tier", *tier,
		"train", *train, "corpus", *corpus)
	trainSets, normalSets, attackSets := generate(*topoName, *tier, *seed, *train, *corpus)

	if err := trainProfile(client, base, *profile, trainSets); err != nil {
		fatal(err)
	}
	logger.Info("profile trained", "profile", *profile, "route_sets", len(trainSets))

	items := buildCorpus(*profile, normalSets, attackSets, *batch)
	var res *result
	if *stream {
		res = runStream(client, base, items, *clients, *requests, *duration)
	} else {
		res = run(client, base, items, *clients, *requests, *duration, *batch)
	}
	res.report(os.Stdout)
	scrapeServerMetrics(client, base)
	res.summaryJSON(os.Stdout, mode(*stream, *batch))
	if res.errors > 0 && res.ok == 0 {
		os.Exit(1)
	}
}

// resolveServer returns the base URL to drive and a shutdown function. With
// an empty addr it starts an in-process service on a loopback port.
func resolveServer(addr string) (string, func()) {
	if addr != "" {
		return addr, func() {}
	}
	svc := samnet.NewDetectionService(samnet.ServiceConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	logger.Info("in-process server up", "addr", ln.Addr().String())
	return "http://" + ln.Addr().String(), func() {
		srv.Close()
		svc.Close()
	}
}

// generate produces training route sets plus the normal/attacked evaluation
// corpus, all from MR discoveries on the named topology.
func generate(topoName string, tier int, seed uint64, train, corpus int) (trainSets, normal, attacked [][][]int) {
	discover := func(net *samnet.Network, n int, seedBase uint64) [][][]int {
		out := make([][][]int, 0, n)
		rng := rand.New(rand.NewPCG(seedBase, 0x10ad))
		for i := 0; i < n; i++ {
			src, dst := net.PickPair(rng)
			d := samnet.DiscoverMR(net, src, dst, seedBase+uint64(i)*7919)
			out = append(out, routesJSON(d.Routes))
		}
		return out
	}

	buildNet := func() *samnet.Network {
		net, err := cli.BuildTopology(topoName, tier, seed)
		if err != nil {
			fatal(err)
		}
		return net
	}

	net := buildNet()
	trainSets = discover(net, train, seed)
	normal = discover(net, corpus, seed+1_000_000)

	sc := samnet.Attack(net, 1, samnet.BehaviorForward)
	attacked = discover(net, corpus, seed+2_000_000)
	sc.Teardown()
	return trainSets, normal, attacked
}

func routesJSON(routes []samnet.Route) [][]int {
	out := make([][]int, len(routes))
	for i, r := range routes {
		nodes := make([]int, len(r))
		for j, id := range r {
			nodes[j] = int(id)
		}
		out[i] = nodes
	}
	return out
}

func trainProfile(client *http.Client, base, profile string, sets [][][]int) error {
	body, err := json.Marshal(service.TrainRequest{RouteSets: sets})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/profiles/"+profile+"/train", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("train: %s: %s", resp.Status, blob)
	}
	return nil
}

// buildCorpus pre-marshals the request bodies: alternating normal/attacked
// route sets, grouped batch-at-a-time when batch > 1.
func buildCorpus(profile string, normal, attacked [][][]int, batch int) []corpusItem {
	type labeled struct {
		set    [][]int
		attack bool
	}
	var all []labeled
	for i := 0; i < len(normal) || i < len(attacked); i++ {
		if i < len(normal) {
			all = append(all, labeled{normal[i], false})
		}
		if i < len(attacked) {
			all = append(all, labeled{attacked[i], true})
		}
	}
	var items []corpusItem
	if batch == 1 {
		for _, l := range all {
			body, err := json.Marshal(service.DetectRequest{Profile: profile, Routes: l.set})
			if err != nil {
				fatal(err)
			}
			items = append(items, corpusItem{payload: body, attacks: []bool{l.attack}})
		}
		return items
	}
	for at := 0; at < len(all); at += batch {
		end := at + batch
		if end > len(all) {
			end = len(all)
		}
		req := service.BatchDetectRequest{Profile: profile}
		var truth []bool
		for _, l := range all[at:end] {
			req.Items = append(req.Items, l.set)
			truth = append(truth, l.attack)
		}
		body, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		items = append(items, corpusItem{payload: body, attacks: truth})
	}
	return items
}

type result struct {
	ok, errors, rejected int64
	elapsed              time.Duration
	latency              *obs.Histogram // shared with the service's bucket layout
	scored               int64          // route sets scored (ok requests * batch items)
	truePos, falsePos    int64
	attackSeen, normSeen int64
}

// run drives the corpus with the given concurrency until the request budget
// or deadline runs out.
func run(client *http.Client, base string, items []corpusItem, clients, requests int, duration time.Duration, batch int) *result {
	endpoint := base + "/v1/detect"
	if batch > 1 {
		endpoint = base + "/v1/detect/batch"
	}

	var next atomic.Int64
	deadline := time.Now().Add(duration)
	budget := int64(requests)

	// The histogram is written concurrently by every client (atomic bucket
	// counters), so latency needs no per-goroutine staging or merge.
	res := &result{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ok, errs, rejected, scored, tp, fp, atk, nrm int64
			for {
				idx := next.Add(1) - 1
				if budget > 0 {
					if idx >= budget {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				item := items[idx%int64(len(items))]
				begin := time.Now()
				decisions, status, err := post(client, endpoint, item.payload, batch)
				took := time.Since(begin)
				switch {
				case err != nil:
					errs++
					continue
				case status == http.StatusTooManyRequests:
					rejected++
					continue
				case status != http.StatusOK:
					errs++
					continue
				}
				ok++
				res.latency.ObserveDuration(took)
				for i, dec := range decisions {
					if i >= len(item.attacks) {
						break
					}
					scored++
					positive := dec != "normal"
					if item.attacks[i] {
						atk++
						if positive {
							tp++
						}
					} else {
						nrm++
						if positive {
							fp++
						}
					}
				}
			}
			mu.Lock()
			res.ok += ok
			res.errors += errs
			res.rejected += rejected
			res.scored += scored
			res.truePos += tp
			res.falsePos += fp
			res.attackSeen += atk
			res.normSeen += nrm
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// mode names the driving strategy for the machine-readable summary.
func mode(stream bool, batch int) string {
	switch {
	case stream:
		return "stream"
	case batch > 1:
		return "batch"
	}
	return "detect"
}

// streamWindow bounds how many request lines each stream client keeps in
// flight: the writer blocks pushing into the window once it is full, so a
// slow server applies backpressure instead of letting the pipe buffer grow.
const streamWindow = 128

// inflight is the ground truth a stream writer records per request line for
// the reader to match against the response line in order.
type inflight struct {
	begin  time.Time
	attack bool
}

// runStream drives the corpus through /v1/detect/stream: one long-lived POST
// per client, a writer goroutine pipelining request lines, and the client
// goroutine reading response lines in request order. Latency is line-written
// to line-answered, which includes queueing inside the window — the price of
// measuring a pipeline rather than a round trip.
func runStream(client *http.Client, base string, items []corpusItem, clients, requests int, duration time.Duration) *result {
	endpoint := base + "/v1/detect/stream"
	// Batch-1 detect bodies are single-line JSON, so NDJSON framing is just
	// a newline suffix, appended once here rather than per write.
	for i := range items {
		items[i].payload = append(items[i].payload, '\n')
	}

	var next atomic.Int64
	deadline := time.Now().Add(duration)
	budget := int64(requests)

	res := &result{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, errs, scored, tp, fp, atk, nrm := streamClient(client, endpoint, items, &next, budget, deadline, res.latency)
			mu.Lock()
			res.ok += ok
			res.errors += errs
			res.scored += scored
			res.truePos += tp
			res.falsePos += fp
			res.attackSeen += atk
			res.normSeen += nrm
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// streamClient runs one connection's writer/reader pair to completion.
func streamClient(client *http.Client, endpoint string, items []corpusItem, next *atomic.Int64, budget int64, deadline time.Time, latency *obs.Histogram) (ok, errs, scored, tp, fp, atk, nrm int64) {
	pr, pw := io.Pipe()
	window := make(chan inflight, streamWindow)

	// Writer: claims corpus slots from the shared counter, records the
	// ground truth in the window, then ships the line. Lines are buffered
	// and flushed before the window can block, so the server always holds
	// every line the reader is waiting on.
	go func() {
		bw := bufio.NewWriterSize(pw, 16*1024)
		var werr error
		for werr == nil {
			idx := next.Add(1) - 1
			if budget > 0 {
				if idx >= budget {
					break
				}
			} else if time.Now().After(deadline) {
				break
			}
			item := items[idx%int64(len(items))]
			if len(window) == cap(window) {
				if werr = bw.Flush(); werr != nil {
					break
				}
			}
			window <- inflight{begin: time.Now(), attack: item.attacks[0]}
			_, werr = bw.Write(item.payload)
		}
		if werr == nil {
			werr = bw.Flush()
		}
		// A write error means the server tore the stream down; the reader
		// sees the cause on its side. Either way the request body ends now.
		pw.CloseWithError(werr)
		close(window)
	}()

	req, err := http.NewRequest("POST", endpoint, pr)
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		pr.CloseWithError(err) // unblocks the writer
		for range window {
			errs++
		}
		return ok, errs + 1, scored, tp, fp, atk, nrm
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		pr.CloseWithError(fmt.Errorf("stream status %s", resp.Status))
		for range window {
			errs++
		}
		return ok, errs + 1, scored, tp, fp, atk, nrm
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		sent, open := <-window
		if !open {
			// More response lines than requests: a stream-level error line
			// appended after the last answer, or a protocol bug. Count it
			// and stop matching.
			errs++
			break
		}
		decision, lineErr := streamDecision(line)
		if lineErr != nil {
			errs++
			continue
		}
		ok++
		latency.ObserveDuration(time.Since(sent.begin))
		scored++
		positive := decision != "normal"
		if sent.attack {
			atk++
			if positive {
				tp++
			}
		} else {
			nrm++
			if positive {
				fp++
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs++
	}
	// The response is over; make sure the writer can't stay blocked on the
	// pipe, then count requests the server never answered.
	pr.CloseWithError(fmt.Errorf("response stream ended"))
	for range window {
		errs++
	}
	return ok, errs, scored, tp, fp, atk, nrm
}

// decisionMark is the response-line prefix of the decision value. Scanning
// for it beats a full json.Unmarshal per line, and at stream rates the
// client's parsing shares a CPU budget with the server under test.
var decisionMark = []byte(`"verdict":{"decision":"`)

// streamDecision extracts the verdict decision from one response line, or
// the error the line carries. The fast path byte-scans for the decision
// field; anything it cannot place exactly falls back to real JSON decoding.
func streamDecision(line []byte) (string, error) {
	if i := bytes.Index(line, decisionMark); i >= 0 {
		rest := line[i+len(decisionMark):]
		if j := bytes.IndexByte(rest, '"'); j > 0 {
			switch string(rest[:j]) { // compiler avoids the conversion alloc
			case "normal":
				return "normal", nil
			case "suspicious":
				return "suspicious", nil
			case "attacked":
				return "attacked", nil
			}
		}
	}
	var lr struct {
		Verdict struct {
			Decision string `json:"decision"`
		} `json:"verdict"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(line, &lr); err != nil {
		return "", err
	}
	if lr.Error != "" {
		return "", fmt.Errorf("server: %s", lr.Error)
	}
	if lr.Verdict.Decision == "" {
		return "", fmt.Errorf("response line carries no decision: %.120s", line)
	}
	return lr.Verdict.Decision, nil
}

// post issues one request and extracts the verdict decisions.
func post(client *http.Client, endpoint string, payload []byte, batch int) ([]string, int, error) {
	resp, err := client.Post(endpoint, "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	if batch == 1 {
		var dr service.DetectResponse
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			return nil, resp.StatusCode, err
		}
		return []string{dr.Verdict.Decision}, resp.StatusCode, nil
	}
	var br service.BatchDetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, resp.StatusCode, err
	}
	decisions := make([]string, len(br.Verdicts))
	for i, v := range br.Verdicts {
		decisions[i] = v.Decision
	}
	return decisions, resp.StatusCode, nil
}

// quantile estimates the q-quantile in seconds, clamped to the observed
// maximum (bucket interpolation can overshoot it in a sparse tail bucket).
func (r *result) quantile(q float64) float64 {
	v := r.latency.Quantile(q)
	if m := r.latency.Max(); v > m {
		v = m
	}
	return v
}

// quantileDur is quantile as a duration.
func (r *result) quantileDur(q float64) time.Duration {
	return time.Duration(r.quantile(q) * float64(time.Second))
}

func (r *result) report(w io.Writer) {
	rps := float64(r.ok) / r.elapsed.Seconds()
	fmt.Fprintf(w, "requests:       %d ok, %d rejected (429), %d errors in %s\n",
		r.ok, r.rejected, r.errors, r.elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput:     %.0f req/s (%.0f route sets/s)\n",
		rps, float64(r.scored)/r.elapsed.Seconds())
	if r.latency.Count() > 0 {
		max := time.Duration(r.latency.Max() * float64(time.Second))
		fmt.Fprintf(w, "latency:        p50 %s  p95 %s  p99 %s  max %s\n",
			r.quantileDur(0.50).Round(time.Microsecond), r.quantileDur(0.95).Round(time.Microsecond),
			r.quantileDur(0.99).Round(time.Microsecond), max.Round(time.Microsecond))
	}
	if r.attackSeen > 0 {
		fmt.Fprintf(w, "detection rate: %.3f (%d/%d wormhole route sets flagged)\n",
			float64(r.truePos)/float64(r.attackSeen), r.truePos, r.attackSeen)
	}
	if r.normSeen > 0 {
		fmt.Fprintf(w, "false positives: %.3f (%d/%d normal route sets flagged)\n",
			float64(r.falsePos)/float64(r.normSeen), r.falsePos, r.normSeen)
	}
}

// summary is the machine-readable run record emitted as the last stdout
// line, so CI can `tail -n 1` and parse one JSON object.
type summary struct {
	Mode          string  `json:"mode"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	ElapsedS      float64 `json:"elapsed_s"`
	RequestsPerS  float64 `json:"req_per_s"`
	SetsPerS      float64 `json:"sets_per_s"`
	P50S          float64 `json:"p50_s"`
	P95S          float64 `json:"p95_s"`
	P99S          float64 `json:"p99_s"`
	MaxS          float64 `json:"max_s"`
	DetectionRate float64 `json:"detection_rate"`
	FalsePosRate  float64 `json:"false_positive_rate"`
}

func (r *result) summaryJSON(w io.Writer, mode string) {
	s := summary{
		Mode:     mode,
		OK:       r.ok,
		Rejected: r.rejected,
		Errors:   r.errors,
		ElapsedS: r.elapsed.Seconds(),
	}
	if r.elapsed > 0 {
		s.RequestsPerS = float64(r.ok) / r.elapsed.Seconds()
		s.SetsPerS = float64(r.scored) / r.elapsed.Seconds()
	}
	if r.latency.Count() > 0 {
		s.P50S = r.quantile(0.50)
		s.P95S = r.quantile(0.95)
		s.P99S = r.quantile(0.99)
		s.MaxS = r.latency.Max()
	}
	if r.attackSeen > 0 {
		s.DetectionRate = float64(r.truePos) / float64(r.attackSeen)
	}
	if r.normSeen > 0 {
		s.FalsePosRate = float64(r.falsePos) / float64(r.normSeen)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "%s\n", blob)
}

// scrapeServerMetrics fetches the server's Prometheus exposition after the
// run and logs the server-side view of the load: detections by decision,
// trainings, and peak queue pressure. Missing /metrics (older or remote
// servers) only downgrades the log, never the benchmark.
func scrapeServerMetrics(client *http.Client, base string) {
	resp, err := client.Get(base + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			err = fmt.Errorf("status %s", resp.Status)
		}
		logger.Info("server metrics unavailable", "err", err.Error())
		return
	}
	defer resp.Body.Close()

	// Sum each counter family over its label sets; enough structure for a
	// one-line operational log without a real exposition parser.
	totals := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) {
			continue
		}
		totals[name] += f
	}
	logger.Info("server metrics",
		"detections", totals["samserve_detections_total"],
		"requests", totals["samserve_requests_total"],
		"trainings", totals["samserve_profile_trainings_total"],
		"decisions_recorded", totals["samserve_decisions_recorded"],
		"latency_count", totals["samserve_request_duration_seconds_count"])
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
