// Command samload is the end-to-end serving benchmark for samserve. It
// builds a topology through the library facade, runs multi-path route
// discoveries under normal and wormhole conditions, trains a profile over
// the service API, and then drives the detect endpoints with concurrent
// clients — reporting throughput, latency percentiles, and detection
// accuracy (detection rate on wormhole route sets, false-positive rate on
// normal ones).
//
// Usage:
//
//	samload [-addr http://host:port | -addrs http://h1:port,http://h2:port]
//	        [-clients N] [-duration 5s]
//	        [-requests N] [-batch K] [-stream]
//	        [-topo cluster|uniform6x6|uniform10x6]
//	        [-tier K] [-train N] [-corpus N] [-profile name] [-profiles N]
//	        [-verdicts file.ndjson] [-seed S] [-log-format text|json]
//
// With no -addr, samload starts an in-process samserve on a loopback port
// and benchmarks that, so `samload` alone measures the full serving path.
//
// Fleet mode: -addrs drives several replicas directly, placing each request
// on the replica owning its profile with the same rendezvous hash samgate
// uses, and reports per-replica throughput/latency/accuracy next to the
// aggregate. Pointing -addr at a samgate gateway is the other fleet mode —
// placement then happens server-side. -profiles N shards the workload over N
// profiles named <profile>-0..<profile>-(N-1) (trained identically), so a
// fleet actually has placement to do; the default single profile lands on
// one replica. Invalid flag combinations fail immediately (exit 2) instead
// of silently degrading.
//
// -verdicts scores the whole corpus once — sequentially, in corpus order,
// with adaptive updates off — before the load phase, appending each raw
// response body to the file. Two runs over the same corpus (say, one against
// a lone replica and one through a gateway) must produce byte-identical
// files; CI diffs them to prove the fleet serves the same verdicts.
//
// -stream switches each client from request/response over /v1/detect to the
// NDJSON pipeline on /v1/detect/stream: one long-lived POST per client, with
// a bounded window of requests in flight on the connection. Per-request HTTP
// framing is what caps the lockstep modes at round-trip throughput, so
// -stream is the mode that measures the service's actual scoring capacity.
// It requires -batch 1 (the stream protocol is one route set per line).
//
// Latency percentiles come from the same fixed-bucket histogram the service
// exposes (internal/obs), so client- and server-side latency reports share
// one definition. After the run samload scrapes the server's /metrics and
// logs the server-side counters next to its own. The last stdout line is a
// one-line JSON summary for CI consumption.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	samnet "samnet"
	"samnet/internal/cli"
	"samnet/internal/cluster"
	"samnet/internal/obs"
	"samnet/internal/service"
)

// logger is the command's structured logger, set before any work begins.
var logger = slog.Default()

type corpusItem struct {
	payload  []byte // pre-marshalled request body
	noUpdate []byte // same request with adaptive updates off (verdict pass)
	attacks  []bool // ground truth per route set in the body
	target   int    // fleet.bases index this item routes to
}

// fleet is the set of servers under load: one base URL in single/gateway
// mode, several with client-side rendezvous placement in -addrs mode.
type fleet struct {
	bases []string
	ring  *cluster.Ring // nil = everything routes to bases[0]
}

func (f *fleet) owner(profile string) int {
	if f.ring == nil {
		return 0
	}
	addr := f.ring.Owner(profile)
	for i, b := range f.bases {
		if b == addr {
			return i
		}
	}
	return 0
}

func main() {
	var (
		addr      = flag.String("addr", "", "server base URL (empty = start an in-process server)")
		addrs     = flag.String("addrs", "", "comma-separated replica base URLs for client-side fleet placement (mutually exclusive with -addr)")
		clients   = flag.Int("clients", 32, "concurrent client goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "load duration (ignored when -requests > 0)")
		requests  = flag.Int("requests", 0, "total requests to send (0 = run for -duration)")
		batch     = flag.Int("batch", 1, "route sets per request (1 = /v1/detect, >1 = /v1/detect/batch)")
		stream    = flag.Bool("stream", false, "pipeline requests over /v1/detect/stream (requires -batch 1)")
		topoName  = flag.String("topo", "cluster", "topology: cluster, uniform6x6, uniform10x6, random")
		tier      = flag.Int("tier", 1, "transmission range in grid spacings")
		train     = flag.Int("train", 30, "normal discoveries used to train the profile")
		corpus    = flag.Int("corpus", 64, "evaluation discoveries per condition (normal and attacked)")
		profile   = flag.String("profile", "default", "profile name to train and score against")
		profiles  = flag.Int("profiles", 1, "profile shards: train N identical profiles <profile>-0..N-1 and spread the corpus over them")
		verdicts  = flag.String("verdicts", "", "before the load phase, score the corpus once sequentially with updates off and write the raw response bodies to this file")
		seed      = flag.Uint64("seed", 2005, "master seed")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	var err error
	if logger, err = cli.NewLogger(*logFormat); err != nil {
		fatal(err)
	}
	// Fail fast on every invalid flag at once: a load run that silently
	// "fixes" its parameters benchmarks something other than what was asked.
	var bad []string
	if *batch < 1 {
		bad = append(bad, fmt.Sprintf("-batch %d: want >= 1", *batch))
	}
	if *clients < 1 {
		bad = append(bad, fmt.Sprintf("-clients %d: want >= 1", *clients))
	}
	if *requests < 0 {
		bad = append(bad, fmt.Sprintf("-requests %d: want >= 0", *requests))
	}
	if *requests == 0 && *duration <= 0 {
		bad = append(bad, fmt.Sprintf("-duration %s: want > 0 when -requests is 0", *duration))
	}
	if *train < 1 {
		bad = append(bad, fmt.Sprintf("-train %d: want >= 1", *train))
	}
	if *corpus < 1 {
		bad = append(bad, fmt.Sprintf("-corpus %d: want >= 1", *corpus))
	}
	if *profiles < 1 {
		bad = append(bad, fmt.Sprintf("-profiles %d: want >= 1", *profiles))
	}
	if *stream && *batch > 1 {
		bad = append(bad, fmt.Sprintf("-stream requires -batch 1 (got -batch %d)", *batch))
	}
	if *addr != "" && *addrs != "" {
		bad = append(bad, "-addr and -addrs are mutually exclusive (use -addr for one server or a gateway, -addrs for client-side fleet placement)")
	}
	if *stream && *addrs != "" {
		bad = append(bad, "-stream with -addrs is not supported: stream routing is per-line; point -addr at a samgate gateway instead")
	}
	if len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "samload:", msg)
		}
		os.Exit(2)
	}

	fl, shutdown := resolveFleet(*addr, *addrs)
	defer shutdown()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	logger.Info("generating route sets", "topo", *topoName, "tier", *tier,
		"train", *train, "corpus", *corpus)
	trainSets, normalSets, attackSets := generate(*topoName, *tier, *seed, *train, *corpus)

	// Shard names are deterministic, so two samload runs (or samload vs a
	// gateway fleet) place the same profiles in the same order.
	names := shardNames(*profile, *profiles)
	for _, name := range names {
		if err := trainProfile(client, fl.bases[fl.owner(name)], name, trainSets); err != nil {
			fatal(err)
		}
	}
	logger.Info("profiles trained", "profiles", len(names), "route_sets", len(trainSets))

	items := buildCorpus(names, fl, normalSets, attackSets, *batch)
	if *verdicts != "" {
		n, err := dumpVerdicts(client, fl, items, *batch, *verdicts)
		if err != nil {
			fatal(err)
		}
		logger.Info("verdicts written", "path", *verdicts, "responses", n)
	}
	var res *result
	if *stream {
		res = runStream(client, fl.bases[0], items, *clients, *requests, *duration)
	} else {
		res = run(client, fl, items, *clients, *requests, *duration, *batch)
	}
	res.report(os.Stdout, fl)
	for _, base := range fl.bases {
		scrapeServerMetrics(client, base)
	}
	res.summaryJSON(os.Stdout, mode(*stream, *batch), fl)
	if res.errors > 0 && res.ok == 0 {
		os.Exit(1)
	}
}

// shardNames expands -profile/-profiles into the workload's profile names.
func shardNames(profile string, n int) []string {
	if n == 1 {
		return []string{profile}
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", profile, i)
	}
	return names
}

// resolveFleet maps the -addr/-addrs flags onto the fleet under load.
func resolveFleet(addr, addrs string) (*fleet, func()) {
	if addrs != "" {
		var bases []string
		for _, a := range strings.Split(addrs, ",") {
			if a = strings.TrimSuffix(strings.TrimSpace(a), "/"); a != "" {
				bases = append(bases, a)
			}
		}
		if len(bases) == 0 {
			fatal(fmt.Errorf("-addrs lists no usable URLs"))
		}
		return &fleet{bases: bases, ring: cluster.NewRing(bases)}, func() {}
	}
	base, shutdown := resolveServer(addr)
	return &fleet{bases: []string{base}}, shutdown
}

// resolveServer returns the base URL to drive and a shutdown function. With
// an empty addr it starts an in-process service on a loopback port.
func resolveServer(addr string) (string, func()) {
	if addr != "" {
		return addr, func() {}
	}
	svc := samnet.NewDetectionService(samnet.ServiceConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	logger.Info("in-process server up", "addr", ln.Addr().String())
	return "http://" + ln.Addr().String(), func() {
		srv.Close()
		svc.Close()
	}
}

// generate produces training route sets plus the normal/attacked evaluation
// corpus, all from MR discoveries on the named topology.
func generate(topoName string, tier int, seed uint64, train, corpus int) (trainSets, normal, attacked [][][]int) {
	discover := func(net *samnet.Network, n int, seedBase uint64) [][][]int {
		out := make([][][]int, 0, n)
		rng := rand.New(rand.NewPCG(seedBase, 0x10ad))
		for i := 0; i < n; i++ {
			src, dst := net.PickPair(rng)
			d := samnet.DiscoverMR(net, src, dst, seedBase+uint64(i)*7919)
			out = append(out, routesJSON(d.Routes))
		}
		return out
	}

	buildNet := func() *samnet.Network {
		net, err := cli.BuildTopology(topoName, tier, seed)
		if err != nil {
			fatal(err)
		}
		return net
	}

	net := buildNet()
	trainSets = discover(net, train, seed)
	normal = discover(net, corpus, seed+1_000_000)

	sc := samnet.Attack(net, 1, samnet.BehaviorForward)
	attacked = discover(net, corpus, seed+2_000_000)
	sc.Teardown()
	return trainSets, normal, attacked
}

func routesJSON(routes []samnet.Route) [][]int {
	out := make([][]int, len(routes))
	for i, r := range routes {
		nodes := make([]int, len(r))
		for j, id := range r {
			nodes[j] = int(id)
		}
		out[i] = nodes
	}
	return out
}

func trainProfile(client *http.Client, base, profile string, sets [][][]int) error {
	body, err := json.Marshal(service.TrainRequest{RouteSets: sets})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/profiles/"+profile+"/train", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("train: %s: %s", resp.Status, blob)
	}
	return nil
}

// buildCorpus pre-marshals the request bodies: alternating normal/attacked
// route sets, grouped batch-at-a-time when batch > 1, each request assigned
// a profile shard round-robin and routed to the replica owning that shard.
// Assignment depends only on (names, corpus order), so every run over the
// same flags produces the same request sequence — the property the -verdicts
// byte-diff rests on.
func buildCorpus(names []string, fl *fleet, normal, attacked [][][]int, batch int) []corpusItem {
	type labeled struct {
		set    [][]int
		attack bool
	}
	var all []labeled
	for i := 0; i < len(normal) || i < len(attacked); i++ {
		if i < len(normal) {
			all = append(all, labeled{normal[i], false})
		}
		if i < len(attacked) {
			all = append(all, labeled{attacked[i], true})
		}
	}
	noUpdate := false
	var items []corpusItem
	if batch == 1 {
		for i, l := range all {
			// The corpus alternates normal/attacked, so assign shards in
			// pairs: i/2 keeps every shard scoring both labels (i alone would
			// give even shard counts a single label each).
			name := names[(i/2)%len(names)]
			body, err := json.Marshal(service.DetectRequest{Profile: name, Routes: l.set})
			if err != nil {
				fatal(err)
			}
			frozen, err := json.Marshal(service.DetectRequest{Profile: name, Routes: l.set, Update: &noUpdate})
			if err != nil {
				fatal(err)
			}
			items = append(items, corpusItem{
				payload: body, noUpdate: frozen,
				attacks: []bool{l.attack}, target: fl.owner(name),
			})
		}
		return items
	}
	for at := 0; at < len(all); at += batch {
		end := at + batch
		if end > len(all) {
			end = len(all)
		}
		name := names[(at/batch)%len(names)]
		req := service.BatchDetectRequest{Profile: name}
		var truth []bool
		for _, l := range all[at:end] {
			req.Items = append(req.Items, l.set)
			truth = append(truth, l.attack)
		}
		body, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		req.Update = &noUpdate
		frozen, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		items = append(items, corpusItem{
			payload: body, noUpdate: frozen,
			attacks: truth, target: fl.owner(name),
		})
	}
	return items
}

// dumpVerdicts scores every corpus item once — sequentially, in order,
// adaptive updates off — and appends the raw response bodies to path. The
// bodies are NDJSON already (the service newline-terminates every JSON
// response), so the file diffs cleanly across runs: same corpus, same
// verdict bytes, no matter how many replicas served it.
func dumpVerdicts(client *http.Client, fl *fleet, items []corpusItem, batch int, path string) (int, error) {
	suffix := "/v1/detect"
	if batch > 1 {
		suffix = "/v1/detect/batch"
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	for i, item := range items {
		resp, err := client.Post(fl.bases[item.target]+suffix, "application/json", bytes.NewReader(item.noUpdate))
		if err != nil {
			return i, fmt.Errorf("verdict %d: %w", i, err)
		}
		status := resp.StatusCode
		_, err = io.Copy(f, resp.Body)
		resp.Body.Close()
		if err != nil {
			return i, fmt.Errorf("verdict %d: %w", i, err)
		}
		if status != http.StatusOK && status != http.StatusMultiStatus {
			return i, fmt.Errorf("verdict %d: status %d", i, status)
		}
	}
	if err := f.Sync(); err != nil {
		return len(items), err
	}
	return len(items), nil
}

type result struct {
	ok, errors, rejected int64
	elapsed              time.Duration
	latency              *obs.Histogram // shared with the service's bucket layout
	scored               int64          // route sets scored (ok requests * batch items)
	truePos, falsePos    int64
	attackSeen, normSeen int64
	slowest              time.Duration   // slowest ok request
	slowestTrace         string          // its trace id, for /debug/traces lookup
	perReplica           []*replicaStats // one per fleet base in -addrs mode
}

// noteSlowest records a completed ok request if it is the slowest so far.
// Callers hold the result merge lock.
func (r *result) noteSlowest(took time.Duration, trace string) {
	if took > r.slowest {
		r.slowest, r.slowestTrace = took, trace
	}
}

// replicaStats is one replica's share of a fleet run.
type replicaStats struct {
	ok, errors, rejected int64
	scored               int64
	truePos, falsePos    int64
	attackSeen, normSeen int64
	latency              *obs.Histogram
}

// quantile estimates this replica's q-quantile in seconds, clamped to the
// replica's observed maximum like the aggregate quantile.
func (st *replicaStats) quantile(q float64) float64 {
	v := st.latency.Quantile(q)
	if m := st.latency.Max(); v > m {
		v = m
	}
	return v
}

// run drives the corpus with the given concurrency until the request budget
// or deadline runs out, routing each item to its placed replica.
func run(client *http.Client, fl *fleet, items []corpusItem, clients, requests int, duration time.Duration, batch int) *result {
	suffix := "/v1/detect"
	if batch > 1 {
		suffix = "/v1/detect/batch"
	}
	endpoints := make([]string, len(fl.bases))
	for i, base := range fl.bases {
		endpoints[i] = base + suffix
	}

	var next atomic.Int64
	deadline := time.Now().Add(duration)
	budget := int64(requests)

	// Histograms are written concurrently by every client (atomic bucket
	// counters), so latency needs no per-goroutine staging or merge.
	res := &result{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
	res.perReplica = make([]*replicaStats, len(fl.bases))
	for i := range res.perReplica {
		res.perReplica[i] = &replicaStats{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]replicaStats, len(fl.bases))
			var slowest time.Duration
			var slowestTrace string
			for {
				idx := next.Add(1) - 1
				if budget > 0 {
					if idx >= budget {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				item := items[idx%int64(len(items))]
				st := &local[item.target]
				tp := newTraceparent()
				begin := time.Now()
				decisions, status, err := post(client, endpoints[item.target], tp, item.payload, batch)
				took := time.Since(begin)
				switch {
				case err != nil:
					st.errors++
					continue
				case status == http.StatusTooManyRequests:
					st.rejected++
					continue
				case status != http.StatusOK:
					st.errors++
					continue
				}
				st.ok++
				if took > slowest {
					slowest, slowestTrace = took, traceHex(tp)
				}
				res.latency.ObserveDuration(took)
				res.perReplica[item.target].latency.ObserveDuration(took)
				for i, dec := range decisions {
					if i >= len(item.attacks) {
						break
					}
					st.scored++
					positive := dec != "normal"
					if item.attacks[i] {
						st.attackSeen++
						if positive {
							st.truePos++
						}
					} else {
						st.normSeen++
						if positive {
							st.falsePos++
						}
					}
				}
			}
			mu.Lock()
			res.noteSlowest(slowest, slowestTrace)
			for i := range local {
				dst, src := res.perReplica[i], &local[i]
				dst.ok += src.ok
				dst.errors += src.errors
				dst.rejected += src.rejected
				dst.scored += src.scored
				dst.truePos += src.truePos
				dst.falsePos += src.falsePos
				dst.attackSeen += src.attackSeen
				dst.normSeen += src.normSeen
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	for _, st := range res.perReplica {
		res.ok += st.ok
		res.errors += st.errors
		res.rejected += st.rejected
		res.scored += st.scored
		res.truePos += st.truePos
		res.falsePos += st.falsePos
		res.attackSeen += st.attackSeen
		res.normSeen += st.normSeen
	}
	return res
}

// mode names the driving strategy for the machine-readable summary.
func mode(stream bool, batch int) string {
	switch {
	case stream:
		return "stream"
	case batch > 1:
		return "batch"
	}
	return "detect"
}

// streamWindow bounds how many request lines each stream client keeps in
// flight: the writer blocks pushing into the window once it is full, so a
// slow server applies backpressure instead of letting the pipe buffer grow.
const streamWindow = 128

// inflight is the ground truth a stream writer records per request line for
// the reader to match against the response line in order.
type inflight struct {
	begin  time.Time
	attack bool
}

// runStream drives the corpus through /v1/detect/stream: one long-lived POST
// per client, a writer goroutine pipelining request lines, and the client
// goroutine reading response lines in request order. Latency is line-written
// to line-answered, which includes queueing inside the window — the price of
// measuring a pipeline rather than a round trip.
func runStream(client *http.Client, base string, items []corpusItem, clients, requests int, duration time.Duration) *result {
	endpoint := base + "/v1/detect/stream"
	// Batch-1 detect bodies are single-line JSON, so NDJSON framing is just
	// a newline suffix, appended once here rather than per write.
	for i := range items {
		items[i].payload = append(items[i].payload, '\n')
	}

	var next atomic.Int64
	deadline := time.Now().Add(duration)
	budget := int64(requests)

	res := &result{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := streamClient(client, endpoint, items, &next, budget, deadline, res.latency)
			mu.Lock()
			res.ok += st.ok
			res.errors += st.errs
			res.scored += st.scored
			res.truePos += st.tp
			res.falsePos += st.fp
			res.attackSeen += st.atk
			res.normSeen += st.nrm
			res.noteSlowest(st.slowest, st.slowestTrace)
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// streamStats is one stream connection's tally.
type streamStats struct {
	ok, errs, scored, tp, fp, atk, nrm int64
	slowest                            time.Duration
	slowestTrace                       string
}

// streamClient runs one connection's writer/reader pair to completion. The
// connection carries one traceparent: line latency is pipeline latency, so
// the useful trace unit is the connection's stream span, not a per-line id.
func streamClient(client *http.Client, endpoint string, items []corpusItem, next *atomic.Int64, budget int64, deadline time.Time, latency *obs.Histogram) (st streamStats) {
	connTP := newTraceparent()
	pr, pw := io.Pipe()
	window := make(chan inflight, streamWindow)

	// Writer: claims corpus slots from the shared counter, records the
	// ground truth in the window, then ships the line. Lines are buffered
	// and flushed before the window can block, so the server always holds
	// every line the reader is waiting on.
	go func() {
		bw := bufio.NewWriterSize(pw, 16*1024)
		var werr error
		for werr == nil {
			idx := next.Add(1) - 1
			if budget > 0 {
				if idx >= budget {
					break
				}
			} else if time.Now().After(deadline) {
				break
			}
			item := items[idx%int64(len(items))]
			if len(window) == cap(window) {
				if werr = bw.Flush(); werr != nil {
					break
				}
			}
			window <- inflight{begin: time.Now(), attack: item.attacks[0]}
			_, werr = bw.Write(item.payload)
		}
		if werr == nil {
			werr = bw.Flush()
		}
		// A write error means the server tore the stream down; the reader
		// sees the cause on its side. Either way the request body ends now.
		pw.CloseWithError(werr)
		close(window)
	}()

	req, err := http.NewRequest("POST", endpoint, pr)
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Traceparent", connTP)
	resp, err := client.Do(req)
	if err != nil {
		pr.CloseWithError(err) // unblocks the writer
		for range window {
			st.errs++
		}
		st.errs++
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		pr.CloseWithError(fmt.Errorf("stream status %s", resp.Status))
		for range window {
			st.errs++
		}
		st.errs++
		return st
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		sent, open := <-window
		if !open {
			// More response lines than requests: a stream-level error line
			// appended after the last answer, or a protocol bug. Count it
			// and stop matching.
			st.errs++
			break
		}
		decision, lineErr := streamDecision(line)
		if lineErr != nil {
			st.errs++
			continue
		}
		st.ok++
		took := time.Since(sent.begin)
		if took > st.slowest {
			st.slowest, st.slowestTrace = took, traceHex(connTP)
		}
		latency.ObserveDuration(took)
		st.scored++
		positive := decision != "normal"
		if sent.attack {
			st.atk++
			if positive {
				st.tp++
			}
		} else {
			st.nrm++
			if positive {
				st.fp++
			}
		}
	}
	if err := sc.Err(); err != nil {
		st.errs++
	}
	// The response is over; make sure the writer can't stay blocked on the
	// pipe, then count requests the server never answered.
	pr.CloseWithError(fmt.Errorf("response stream ended"))
	for range window {
		st.errs++
	}
	return st
}

// decisionMark is the response-line prefix of the decision value. Scanning
// for it beats a full json.Unmarshal per line, and at stream rates the
// client's parsing shares a CPU budget with the server under test.
var decisionMark = []byte(`"verdict":{"decision":"`)

// streamDecision extracts the verdict decision from one response line, or
// the error the line carries. The fast path byte-scans for the decision
// field; anything it cannot place exactly falls back to real JSON decoding.
func streamDecision(line []byte) (string, error) {
	if i := bytes.Index(line, decisionMark); i >= 0 {
		rest := line[i+len(decisionMark):]
		if j := bytes.IndexByte(rest, '"'); j > 0 {
			switch string(rest[:j]) { // compiler avoids the conversion alloc
			case "normal":
				return "normal", nil
			case "suspicious":
				return "suspicious", nil
			case "attacked":
				return "attacked", nil
			}
		}
	}
	var lr struct {
		Verdict struct {
			Decision string `json:"decision"`
		} `json:"verdict"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(line, &lr); err != nil {
		return "", err
	}
	if lr.Error != "" {
		return "", fmt.Errorf("server: %s", lr.Error)
	}
	if lr.Verdict.Decision == "" {
		return "", fmt.Errorf("response line carries no decision: %.120s", line)
	}
	return lr.Verdict.Decision, nil
}

// newTraceparent mints one client-rooted W3C traceparent. Every load request
// carries its own, so a slow request seen in the report can be looked up by
// trace id in the server's /debug/traces ring.
func newTraceparent() string {
	return obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID())
}

// traceHex extracts the 32-hex trace id from a traceparent header value.
func traceHex(tp string) string { return tp[3:35] }

// post issues one request and extracts the verdict decisions.
func post(client *http.Client, endpoint, traceparent string, payload []byte, batch int) ([]string, int, error) {
	req, err := http.NewRequest("POST", endpoint, bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	if batch == 1 {
		var dr service.DetectResponse
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			return nil, resp.StatusCode, err
		}
		return []string{dr.Verdict.Decision}, resp.StatusCode, nil
	}
	var br service.BatchDetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, resp.StatusCode, err
	}
	decisions := make([]string, len(br.Verdicts))
	for i, v := range br.Verdicts {
		decisions[i] = v.Decision
	}
	return decisions, resp.StatusCode, nil
}

// quantile estimates the q-quantile in seconds, clamped to the observed
// maximum (bucket interpolation can overshoot it in a sparse tail bucket).
func (r *result) quantile(q float64) float64 {
	v := r.latency.Quantile(q)
	if m := r.latency.Max(); v > m {
		v = m
	}
	return v
}

// quantileDur is quantile as a duration.
func (r *result) quantileDur(q float64) time.Duration {
	return time.Duration(r.quantile(q) * float64(time.Second))
}

func (r *result) report(w io.Writer, fl *fleet) {
	rps := float64(r.ok) / r.elapsed.Seconds()
	fmt.Fprintf(w, "requests:       %d ok, %d rejected (429), %d errors in %s\n",
		r.ok, r.rejected, r.errors, r.elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput:     %.0f req/s (%.0f route sets/s)\n",
		rps, float64(r.scored)/r.elapsed.Seconds())
	if r.latency.Count() > 0 {
		max := time.Duration(r.latency.Max() * float64(time.Second))
		fmt.Fprintf(w, "latency:        p50 %s  p95 %s  p99 %s  max %s\n",
			r.quantileDur(0.50).Round(time.Microsecond), r.quantileDur(0.95).Round(time.Microsecond),
			r.quantileDur(0.99).Round(time.Microsecond), max.Round(time.Microsecond))
	}
	if r.slowestTrace != "" {
		fmt.Fprintf(w, "slowest:        %s (trace %s — look it up under /debug/traces?trace=%s)\n",
			r.slowest.Round(time.Microsecond), r.slowestTrace, r.slowestTrace)
	}
	if r.attackSeen > 0 {
		fmt.Fprintf(w, "detection rate: %.3f (%d/%d wormhole route sets flagged)\n",
			float64(r.truePos)/float64(r.attackSeen), r.truePos, r.attackSeen)
	}
	if r.normSeen > 0 {
		fmt.Fprintf(w, "false positives: %.3f (%d/%d normal route sets flagged)\n",
			float64(r.falsePos)/float64(r.normSeen), r.falsePos, r.normSeen)
	}
	if len(r.perReplica) > 1 {
		for i, st := range r.perReplica {
			line := fmt.Sprintf("replica %-28s %d ok, %d rejected, %d errors, %.0f req/s",
				fl.bases[i]+":", st.ok, st.rejected, st.errors, float64(st.ok)/r.elapsed.Seconds())
			if st.latency.Count() > 0 {
				p50 := time.Duration(st.quantile(0.50) * float64(time.Second))
				p95 := time.Duration(st.quantile(0.95) * float64(time.Second))
				p99 := time.Duration(st.quantile(0.99) * float64(time.Second))
				line += fmt.Sprintf(", p50 %s, p95 %s, p99 %s",
					p50.Round(time.Microsecond), p95.Round(time.Microsecond),
					p99.Round(time.Microsecond))
			}
			if st.attackSeen > 0 {
				line += fmt.Sprintf(", detection %.3f", float64(st.truePos)/float64(st.attackSeen))
			}
			fmt.Fprintln(w, line)
		}
	}
}

// summary is the machine-readable run record emitted as the last stdout
// line, so CI can `tail -n 1` and parse one JSON object.
type summary struct {
	Mode          string  `json:"mode"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	ElapsedS      float64 `json:"elapsed_s"`
	RequestsPerS  float64 `json:"req_per_s"`
	SetsPerS      float64 `json:"sets_per_s"`
	P50S          float64 `json:"p50_s"`
	P95S          float64 `json:"p95_s"`
	P99S          float64 `json:"p99_s"`
	MaxS          float64 `json:"max_s"`
	DetectionRate float64 `json:"detection_rate"`
	FalsePosRate  float64 `json:"false_positive_rate"`
	// SlowestS/SlowestTraceID identify the slowest ok request for follow-up
	// against the server's /debug/traces ring.
	SlowestS       float64 `json:"slowest_s,omitempty"`
	SlowestTraceID string  `json:"slowest_trace_id,omitempty"`
	// Replicas breaks the run down per replica in -addrs fleet mode.
	Replicas []replicaSummary `json:"replicas,omitempty"`
}

// replicaSummary is one replica's row in the fleet summary.
type replicaSummary struct {
	Addr          string  `json:"addr"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	RequestsPerS  float64 `json:"req_per_s"`
	P50S          float64 `json:"p50_s"`
	P95S          float64 `json:"p95_s"`
	P99S          float64 `json:"p99_s"`
	DetectionRate float64 `json:"detection_rate"`
}

func (r *result) summaryJSON(w io.Writer, mode string, fl *fleet) {
	s := summary{
		Mode:     mode,
		OK:       r.ok,
		Rejected: r.rejected,
		Errors:   r.errors,
		ElapsedS: r.elapsed.Seconds(),
	}
	if len(r.perReplica) > 1 {
		for i, st := range r.perReplica {
			rs := replicaSummary{
				Addr:     fl.bases[i],
				OK:       st.ok,
				Rejected: st.rejected,
				Errors:   st.errors,
			}
			if r.elapsed > 0 {
				rs.RequestsPerS = float64(st.ok) / r.elapsed.Seconds()
			}
			if st.latency.Count() > 0 {
				rs.P50S = st.quantile(0.50)
				rs.P95S = st.quantile(0.95)
				rs.P99S = st.quantile(0.99)
			}
			if st.attackSeen > 0 {
				rs.DetectionRate = float64(st.truePos) / float64(st.attackSeen)
			}
			s.Replicas = append(s.Replicas, rs)
		}
	}
	if r.elapsed > 0 {
		s.RequestsPerS = float64(r.ok) / r.elapsed.Seconds()
		s.SetsPerS = float64(r.scored) / r.elapsed.Seconds()
	}
	if r.latency.Count() > 0 {
		s.P50S = r.quantile(0.50)
		s.P95S = r.quantile(0.95)
		s.P99S = r.quantile(0.99)
		s.MaxS = r.latency.Max()
	}
	if r.slowestTrace != "" {
		s.SlowestS = r.slowest.Seconds()
		s.SlowestTraceID = r.slowestTrace
	}
	if r.attackSeen > 0 {
		s.DetectionRate = float64(r.truePos) / float64(r.attackSeen)
	}
	if r.normSeen > 0 {
		s.FalsePosRate = float64(r.falsePos) / float64(r.normSeen)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "%s\n", blob)
}

// scrapeServerMetrics fetches the server's Prometheus exposition after the
// run and logs the server-side view of the load: detections by decision,
// trainings, and peak queue pressure. Missing /metrics (older or remote
// servers) only downgrades the log, never the benchmark.
func scrapeServerMetrics(client *http.Client, base string) {
	resp, err := client.Get(base + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			err = fmt.Errorf("status %s", resp.Status)
		}
		logger.Info("server metrics unavailable", "err", err.Error())
		return
	}
	defer resp.Body.Close()

	// Sum each counter family over its label sets; enough structure for a
	// one-line operational log without a real exposition parser.
	totals := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) {
			continue
		}
		totals[name] += f
	}
	logger.Info("server metrics",
		"detections", totals["samserve_detections_total"],
		"requests", totals["samserve_requests_total"],
		"trainings", totals["samserve_profile_trainings_total"],
		"decisions_recorded", totals["samserve_decisions_recorded"],
		"latency_count", totals["samserve_request_duration_seconds_count"])
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
