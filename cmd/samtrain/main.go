// Command samtrain trains a SAM normal-condition profile for a given
// topology and routing protocol by running repeated clean route discoveries,
// and writes the profile as JSON (for samsim -profile or library use).
//
// Usage:
//
//	samtrain [-topo cluster|uniform6x6|uniform10x6|random] [-tier K]
//	         [-protocol mr|smr|dsr] [-runs N] [-parallel P] [-seed S]
//	         [-o profile.json] [-snapshot] [-name NAME]
//	         [-progress] [-log-format text|json]
//
// -snapshot switches the output to samserve's snapshot format (header line
// plus one profile record), so a trained profile can seed a samserve
// -snapshot file directly; -name sets the record's store name (default: the
// training label).
//
// Discoveries run on a worker pool (-parallel, default all cores) but every
// run's randomness is derived from its run index, and results fold into the
// trainer in run order — the emitted profile is byte-identical for any
// parallelism, including -parallel 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"

	"samnet/internal/cli"
	"samnet/internal/obs"
	"samnet/internal/routing"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/service"
	"samnet/internal/sim"
)

// logger is the command's structured logger, set before any work begins.
var logger = slog.Default()

func main() {
	var (
		topoName  = flag.String("topo", "cluster", "topology: cluster, uniform6x6, uniform10x6, random")
		tier      = flag.Int("tier", 1, "transmission range in grid spacings")
		protoName = flag.String("protocol", "mr", "routing protocol: mr, smr, dsr, aomdv, mdsr")
		runs      = flag.Int("runs", 30, "training route discoveries")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = serial)")
		seed      = flag.Uint64("seed", 2005, "master seed")
		out       = flag.String("o", "", "output file (default stdout)")
		snapshot  = flag.Bool("snapshot", false, "emit samserve snapshot format instead of bare profile JSON")
		name      = flag.String("name", "", "store name for -snapshot records (default: the training label)")
		progress  = flag.Bool("progress", false, "report run progress (runs/s, ETA) on stderr")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	var err error
	if logger, err = cli.NewLogger(*logFormat); err != nil {
		fatal(err)
	}

	proto, err := cli.BuildProtocol(*protoName)
	if err != nil {
		fatal(err)
	}

	label := fmt.Sprintf("%s-%dtier/%s", *topoName, *tier, proto.Name())
	logger.Info("training", "label", label, "runs", *runs, "seed", *seed)

	// The runner announces the run count via Start, so the tracker begins
	// with an empty total.
	var pr *obs.Progress
	if *progress {
		pr = obs.NewProgress(os.Stderr, "samtrain", 0)
	}

	type discOut struct {
		routes []routing.Route
		err    error
	}
	// Each run's seeds depend only on the run index, never on which worker
	// executes it; the trainer fold below is serial and in run order. The
	// progress hook observes completion counts only, so it cannot perturb
	// the emitted profile.
	outs := runner.MapProgress(*parallel, *runs, pr, func(run int) discOut {
		net, err := cli.BuildTopology(*topoName, *tier, *seed+uint64(run))
		if err != nil {
			return discOut{err: err}
		}
		pairRng := rand.New(rand.NewPCG(*seed, uint64(run)))
		src, dst := net.PickPair(pairRng)
		simNet := sim.NewNetwork(net.Topo, sim.Config{Seed: *seed + uint64(run)*7919})
		d := proto.Discover(simNet, src, dst)
		return discOut{routes: d.Routes}
	})

	pr.Finish()
	trainer := sam.NewTrainer(label, 0)
	for _, o := range outs {
		if o.err != nil {
			fatal(o.err)
		}
		trainer.ObserveRoutes(o.routes)
	}
	profile, err := trainer.Profile()
	if err != nil {
		fatal(err)
	}

	var blob []byte
	if *snapshot {
		// Snapshot output: the exact file samserve -snapshot restores on
		// boot. A freshly trained profile's adaptive means are its trained
		// means — the low-pass filter's starting point.
		recName := *name
		if recName == "" {
			recName = label
		}
		var buf bytes.Buffer
		if err := service.WriteSnapshotHeader(&buf); err != nil {
			fatal(err)
		}
		rec := service.ProfileResponse{
			Name:     recName,
			Runs:     trainer.Runs(),
			PMaxMean: profile.PMax.Mean,
			PhiMean:  profile.Phi.Mean,
			Profile:  profile,
		}
		if err := service.WriteSnapshotRecord(&buf, rec); err != nil {
			fatal(err)
		}
		blob = buf.Bytes()
	} else {
		if blob, err = json.MarshalIndent(profile, "", "  "); err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
	}
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	logger.Info("trained", "label", label, "runs", trainer.Runs(),
		"pmax", profile.PMax.String(), "phi", profile.Phi.String())
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
