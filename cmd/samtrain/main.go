// Command samtrain trains a SAM normal-condition profile for a given
// topology and routing protocol by running repeated clean route discoveries,
// and writes the profile as JSON (for samsim -profile or library use).
//
// Usage:
//
//	samtrain [-topo cluster|uniform6x6|uniform10x6|random] [-tier K]
//	         [-protocol mr|smr|dsr] [-runs N] [-seed S] [-o profile.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"samnet/internal/cli"
	"samnet/internal/sam"
	"samnet/internal/sim"
)

func main() {
	var (
		topoName  = flag.String("topo", "cluster", "topology: cluster, uniform6x6, uniform10x6, random")
		tier      = flag.Int("tier", 1, "transmission range in grid spacings")
		protoName = flag.String("protocol", "mr", "routing protocol: mr, smr, dsr, aomdv, mdsr")
		runs      = flag.Int("runs", 30, "training route discoveries")
		seed      = flag.Uint64("seed", 2005, "master seed")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	proto, err := cli.BuildProtocol(*protoName)
	if err != nil {
		fatal(err)
	}

	label := fmt.Sprintf("%s-%dtier/%s", *topoName, *tier, proto.Name())
	trainer := sam.NewTrainer(label, 0)
	for run := 0; run < *runs; run++ {
		net, err := cli.BuildTopology(*topoName, *tier, *seed+uint64(run))
		if err != nil {
			fatal(err)
		}
		pairRng := rand.New(rand.NewPCG(*seed, uint64(run)))
		src, dst := net.PickPair(pairRng)
		simNet := sim.NewNetwork(net.Topo, sim.Config{Seed: *seed + uint64(run)*7919})
		d := proto.Discover(simNet, src, dst)
		trainer.ObserveRoutes(d.Routes)
	}
	profile, err := trainer.Profile()
	if err != nil {
		fatal(err)
	}

	blob, err := json.MarshalIndent(profile, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "samtrain: trained %q on %d runs (pmax %s | phi %s)\n",
		label, trainer.Runs(), profile.PMax, profile.Phi)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samtrain:", err)
	os.Exit(1)
}
