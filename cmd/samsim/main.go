// Command samsim runs one simulated route discovery and prints the route
// set, SAM's statistics, and — when a trained profile is supplied — the
// detector's verdict.
//
// Usage:
//
//	samsim [-topo cluster|uniform6x6|uniform10x6|random] [-tier K]
//	       [-wormholes 0|1|2] [-behavior forward|blackhole|greyhole]
//	       [-protocol mr|smr|dsr] [-seed S] [-profile file.json] [-v]
//	       [-runs N] [-parallel P] [-progress] [-log-format text|json]
//	       [-cpuprofile file] [-memprofile file]
//
// With -runs N > 1, samsim runs N independent discoveries of the same
// condition on a worker pool (-parallel, default all cores) and prints one
// summary line per run plus aggregates. Each run's seed derives from the run
// index (see internal/runner), so output is bitwise-identical for any
// -parallel level, including 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"

	"samnet/internal/attack"
	"samnet/internal/cli"
	"samnet/internal/obs"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/viz"
)

// logger is the command's structured logger, set before any work begins.
var logger = slog.Default()

func main() {
	var (
		topoName  = flag.String("topo", "cluster", "topology: cluster, uniform6x6, uniform10x6, random")
		tier      = flag.Int("tier", 1, "transmission range in grid spacings (grid topologies)")
		wormholes = flag.Int("wormholes", 1, "active wormhole pairs (0-2)")
		behavior  = flag.String("behavior", "forward", "attacker payload behaviour: forward, blackhole, greyhole")
		protoName = flag.String("protocol", "mr", "routing protocol: mr, smr, dsr, aomdv, mdsr")
		seed      = flag.Uint64("seed", 1, "simulation seed (master seed with -runs > 1)")
		profile   = flag.String("profile", "", "trained profile JSON (from samtrain) to evaluate a verdict")
		verbose   = flag.Bool("v", false, "print every route (single-run mode)")
		showMap   = flag.Bool("map", false, "render an ASCII map with the first route overlaid (single-run mode)")
		runsN     = flag.Int("runs", 1, "independent discoveries of this condition")
		parallel  = flag.Int("parallel", 0, "worker pool size with -runs > 1 (0 = all cores, 1 = serial)")
		progress  = flag.Bool("progress", false, "report run progress (runs/s, ETA) on stderr with -runs > 1")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var err error
	if logger, err = cli.NewLogger(*logFormat); err != nil {
		fatal(err)
	}

	stopProfiles, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	var beh attack.PayloadBehavior
	switch *behavior {
	case "forward":
		beh = attack.Forward
	case "blackhole":
		beh = attack.Blackhole
	case "greyhole":
		beh = attack.Greyhole
	default:
		fatal(fmt.Errorf("unknown behavior %q", *behavior))
	}

	if *runsN > 1 {
		runBatch(batchConfig{
			topo: *topoName, tier: *tier, wormholes: *wormholes, behavior: beh,
			protocol: *protoName, seed: *seed, profile: *profile,
			runs: *runsN, parallel: *parallel, progress: *progress,
		})
		return
	}

	net, err := cli.BuildTopology(*topoName, *tier, *seed)
	if err != nil {
		fatal(err)
	}

	var sc *attack.Scenario
	if *wormholes > 0 {
		sc = attack.NewScenario(net, *wormholes, beh)
	}

	proto, err := cli.BuildProtocol(*protoName)
	if err != nil {
		fatal(err)
	}

	src, dst := net.PickPair(rand.New(rand.NewPCG(*seed, 77)))
	simNet := sim.NewNetwork(net.Topo, sim.Config{Seed: *seed})
	if sc != nil {
		sc.Arm(simNet)
	}
	disc := proto.Discover(simNet, src, dst)
	st := sam.Analyze(disc.Routes)

	fmt.Printf("topology %s (%d nodes), protocol %s, src=%d dst=%d, seed=%d\n",
		net.Topo.Name(), net.Topo.N(), proto.Name(), src, dst, *seed)
	if sc != nil {
		for i, l := range sc.TunnelLinks() {
			fmt.Printf("wormhole %d: link %v (spans %d normal hops), behaviour %v\n",
				i+1, l, net.TunnelSpan(i), beh)
		}
	}
	fmt.Printf("\nroutes: %d   overhead (tx+rx): %d\n", len(disc.Routes), disc.Overhead())
	tx, rx := simNet.TotalTraffic()
	fmt.Printf("traffic: tx=%d rx=%d dropped=%d lost=%d\n", tx, rx, simNet.Dropped(), simNet.Lost())
	if *verbose {
		for _, r := range disc.Routes {
			fmt.Println("  ", r)
		}
	}
	fmt.Printf("p_max = %.4f (link %v)\nphi   = %.4f\nsuspect link: %v\n",
		st.PMax, st.MaxLink, st.Phi, st.Suspect)
	if *showMap {
		fmt.Println()
		if len(disc.Routes) > 0 {
			fmt.Print(viz.Discovery(net, disc.Routes[0]))
		} else {
			fmt.Print(viz.Network(net))
		}
	}
	if sc != nil {
		aff := 0.0
		for _, l := range sc.TunnelLinks() {
			if a := disc.AffectedBy(l); a > aff {
				aff = a
			}
		}
		fmt.Printf("routes affected by a tunnel: %.0f%%\n", 100*aff)
	}

	if *profile != "" {
		blob, err := os.ReadFile(*profile)
		if err != nil {
			fatal(err)
		}
		var p sam.Profile
		if err := json.Unmarshal(blob, &p); err != nil {
			fatal(err)
		}
		det := sam.NewDetector(&p, sam.DetectorConfig{})
		v := det.Evaluate(st)
		fmt.Printf("\nverdict vs profile %q: %v (lambda=%.3f, z_pmax=%.2f, z_phi=%.2f, tv=%.2f)\n",
			p.Label, v.Decision, v.Lambda, v.ZPMax, v.ZPhi, v.TV)
		if v.Decision != sam.Normal {
			fmt.Printf("accused pair: nodes %d and %d\n", v.Suspects[0], v.Suspects[1])
		}
	}
}

// batchConfig is one samsim condition fanned over -runs independent
// discoveries.
type batchConfig struct {
	topo      string
	tier      int
	wormholes int
	behavior  attack.PayloadBehavior
	protocol  string
	seed      uint64
	profile   string
	runs      int
	parallel  int
	progress  bool
}

// simScratch is one worker's reusable simulation network (see
// sim.Network.Retarget); sharing it across the runs a worker happens to
// execute cannot perturb results.
type simScratch struct{ net *sim.Network }

func (s *simScratch) network(topo *topology.Topology, cfg sim.Config) *sim.Network {
	if s.net == nil {
		s.net = sim.NewNetwork(topo, cfg)
	} else {
		s.net.Retarget(topo, cfg)
	}
	return s.net
}

// batchOut is the result of one run of the batch grid. Fields are written by
// exactly one worker (the run's own) and read only after the pool drains.
type batchOut struct {
	err      error
	src, dst topology.NodeID
	routes   int
	overhead int64
	stats    sam.Stats
	affected float64 // fraction of routes crossing a tunnel
	verdict  *sam.Verdict
	tx, rx   int64 // simulator traffic totals for this run
	dropped  int64 // malicious payload drops (black/grey hole)
	lost     int64 // channel loss
}

// runBatch executes cfg.runs independent discoveries of the same condition
// on the runner pool and prints one line per run, in run order, plus
// aggregates. Randomness per run derives from (master seed, condition label,
// run index) — never from worker identity — so the report is identical for
// every -parallel level.
func runBatch(cfg batchConfig) {
	proto, err := cli.BuildProtocol(cfg.protocol)
	if err != nil {
		fatal(err)
	}
	var det *sam.Detector
	if cfg.profile != "" {
		blob, err := os.ReadFile(cfg.profile)
		if err != nil {
			fatal(err)
		}
		var p sam.Profile
		if err := json.Unmarshal(blob, &p); err != nil {
			fatal(err)
		}
		det = sam.NewDetector(&p, sam.DetectorConfig{})
	}
	label := fmt.Sprintf("samsim/%s-%dtier/%s/w%d", cfg.topo, cfg.tier, proto.Name(), cfg.wormholes)

	// The progress hook observes run completion only; stdout is identical
	// with or without it.
	var pr *obs.Progress
	if cfg.progress {
		pr = obs.NewProgress(os.Stderr, "samsim", 0)
	}

	// Each worker reuses one simulation network across its runs; Retarget is
	// behaviourally indistinguishable from a fresh NewNetwork (it zeroes the
	// traffic counters too), so the report stays bitwise-identical for every
	// -parallel level.
	newScratch := func() *simScratch { return new(simScratch) }
	outs := runner.MapWorkerProgress(cfg.parallel, cfg.runs, pr, newScratch, func(run int, scratch *simScratch) batchOut {
		seedR := runner.DeriveSeed(cfg.seed, label, run)
		net, err := cli.BuildTopology(cfg.topo, cfg.tier, seedR)
		if err != nil {
			return batchOut{err: err}
		}
		var sc *attack.Scenario
		if cfg.wormholes > 0 {
			sc = attack.NewScenario(net, cfg.wormholes, cfg.behavior)
			defer sc.Teardown()
		}
		src, dst := net.PickPair(rand.New(rand.NewPCG(seedR, 77)))
		simNet := scratch.network(net.Topo, sim.Config{Seed: seedR})
		if sc != nil {
			sc.Arm(simNet)
		}
		disc := proto.Discover(simNet, src, dst)
		o := batchOut{
			src: src, dst: dst,
			routes:   len(disc.Routes),
			overhead: disc.Overhead(),
			stats:    sam.Analyze(disc.Routes),
		}
		o.tx, o.rx = simNet.TotalTraffic()
		o.dropped = simNet.Dropped()
		o.lost = simNet.Lost()
		if sc != nil {
			for _, l := range sc.TunnelLinks() {
				if a := disc.AffectedBy(l); a > o.affected {
					o.affected = a
				}
			}
		}
		if det != nil {
			// Evaluate is read-only on the detector (Update is never called
			// here), so sharing one detector across workers is safe and keeps
			// every run scored against the same frozen profile.
			v := det.Evaluate(o.stats)
			o.verdict = &v
		}
		return o
	})
	pr.Finish()

	fmt.Printf("condition %s, %d runs, master seed %d\n\n", label, cfg.runs, cfg.seed)
	fmt.Printf("%4s %5s %5s %9s %8s %8s %8s  %s\n",
		"run", "src", "dst", "routes", "p_max", "phi", "affected", verdictHeader(det))
	var (
		sumPMax, sumPhi, sumAff    float64
		totalRoutes                int
		flagged                    int
		totTx, totRx, totDr, totLo int64
	)
	for run, o := range outs {
		if o.err != nil {
			fatal(fmt.Errorf("run %d: %w", run, o.err))
		}
		v := ""
		if o.verdict != nil {
			v = fmt.Sprintf("%s (lambda=%.3f)", o.verdict.Decision, o.verdict.Lambda)
			if o.verdict.Decision != sam.Normal {
				flagged++
			}
		}
		fmt.Printf("%4d %5d %5d %9d %8.4f %8.4f %7.0f%%  %s\n",
			run, o.src, o.dst, o.routes, o.stats.PMax, o.stats.Phi, 100*o.affected, v)
		sumPMax += o.stats.PMax
		sumPhi += o.stats.Phi
		sumAff += o.affected
		totalRoutes += o.routes
		totTx += o.tx
		totRx += o.rx
		totDr += o.dropped
		totLo += o.lost
	}
	n := float64(len(outs))
	fmt.Printf("\nmean p_max = %.4f   mean phi = %.4f   mean affected = %.0f%%   routes/run = %.1f\n",
		sumPMax/n, sumPhi/n, sumAff/n*100, float64(totalRoutes)/n)
	fmt.Printf("traffic totals: tx=%d rx=%d dropped=%d lost=%d\n", totTx, totRx, totDr, totLo)
	if det != nil {
		fmt.Printf("flagged (suspicious or attacked): %d/%d\n", flagged, len(outs))
	}
}

func verdictHeader(det *sam.Detector) string {
	if det == nil {
		return ""
	}
	return "verdict"
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
