// Command samsim runs one simulated route discovery and prints the route
// set, SAM's statistics, and — when a trained profile is supplied — the
// detector's verdict.
//
// Usage:
//
//	samsim [-topo cluster|uniform6x6|uniform10x6|random] [-tier K]
//	       [-wormholes 0|1|2] [-behavior forward|blackhole|greyhole]
//	       [-protocol mr|smr|dsr] [-seed S] [-profile file.json] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"samnet/internal/attack"
	"samnet/internal/cli"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/viz"
)

func main() {
	var (
		topoName  = flag.String("topo", "cluster", "topology: cluster, uniform6x6, uniform10x6, random")
		tier      = flag.Int("tier", 1, "transmission range in grid spacings (grid topologies)")
		wormholes = flag.Int("wormholes", 1, "active wormhole pairs (0-2)")
		behavior  = flag.String("behavior", "forward", "attacker payload behaviour: forward, blackhole, greyhole")
		protoName = flag.String("protocol", "mr", "routing protocol: mr, smr, dsr, aomdv, mdsr")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		profile   = flag.String("profile", "", "trained profile JSON (from samtrain) to evaluate a verdict")
		verbose   = flag.Bool("v", false, "print every route")
		showMap   = flag.Bool("map", false, "render an ASCII map with the first route overlaid")
	)
	flag.Parse()

	net, err := cli.BuildTopology(*topoName, *tier, *seed)
	if err != nil {
		fatal(err)
	}
	var beh attack.PayloadBehavior
	switch *behavior {
	case "forward":
		beh = attack.Forward
	case "blackhole":
		beh = attack.Blackhole
	case "greyhole":
		beh = attack.Greyhole
	default:
		fatal(fmt.Errorf("unknown behavior %q", *behavior))
	}

	var sc *attack.Scenario
	if *wormholes > 0 {
		sc = attack.NewScenario(net, *wormholes, beh)
	}

	proto, err := cli.BuildProtocol(*protoName)
	if err != nil {
		fatal(err)
	}

	src, dst := net.PickPair(rand.New(rand.NewPCG(*seed, 77)))
	simNet := sim.NewNetwork(net.Topo, sim.Config{Seed: *seed})
	if sc != nil {
		sc.Arm(simNet)
	}
	disc := proto.Discover(simNet, src, dst)
	st := sam.Analyze(disc.Routes)

	fmt.Printf("topology %s (%d nodes), protocol %s, src=%d dst=%d, seed=%d\n",
		net.Topo.Name(), net.Topo.N(), proto.Name(), src, dst, *seed)
	if sc != nil {
		for i, l := range sc.TunnelLinks() {
			fmt.Printf("wormhole %d: link %v (spans %d normal hops), behaviour %v\n",
				i+1, l, net.TunnelSpan(i), beh)
		}
	}
	fmt.Printf("\nroutes: %d   overhead (tx+rx): %d\n", len(disc.Routes), disc.Overhead())
	if *verbose {
		for _, r := range disc.Routes {
			fmt.Println("  ", r)
		}
	}
	fmt.Printf("p_max = %.4f (link %v)\nphi   = %.4f\nsuspect link: %v\n",
		st.PMax, st.MaxLink, st.Phi, st.Suspect)
	if *showMap {
		fmt.Println()
		if len(disc.Routes) > 0 {
			fmt.Print(viz.Discovery(net, disc.Routes[0]))
		} else {
			fmt.Print(viz.Network(net))
		}
	}
	if sc != nil {
		aff := 0.0
		for _, l := range sc.TunnelLinks() {
			if a := disc.AffectedBy(l); a > aff {
				aff = a
			}
		}
		fmt.Printf("routes affected by a tunnel: %.0f%%\n", 100*aff)
	}

	if *profile != "" {
		blob, err := os.ReadFile(*profile)
		if err != nil {
			fatal(err)
		}
		var p sam.Profile
		if err := json.Unmarshal(blob, &p); err != nil {
			fatal(err)
		}
		det := sam.NewDetector(&p, sam.DetectorConfig{})
		v := det.Evaluate(st)
		fmt.Printf("\nverdict vs profile %q: %v (lambda=%.3f, z_pmax=%.2f, z_phi=%.2f, tv=%.2f)\n",
			p.Label, v.Decision, v.Lambda, v.ZPMax, v.ZPhi, v.TV)
		if v.Decision != sam.Normal {
			fmt.Printf("accused pair: nodes %d and %d\n", v.Suspects[0], v.Suspects[1])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samsim:", err)
	os.Exit(1)
}
