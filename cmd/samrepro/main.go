// Command samrepro regenerates the paper's tables and figures (and the
// repository's extension experiments) from the simulator.
//
// Usage:
//
//	samrepro [-exp all|tables|figures|extensions|<id>]
//	         [-runs N] [-seed S] [-parallel P] [-csv] [-o dir]
//	         [-progress] [-log-format text|json]
//	         [-cpuprofile file] [-memprofile file]
//
// -progress reports run completion (runs/s, ETA) on stderr; it observes the
// worker pool without influencing it, so stdout stays bitwise-identical with
// the flag on or off.
//
// Runs fan out over a worker pool (-parallel, default all cores); output is
// bitwise-identical for every parallelism level, including -parallel 1,
// because each run's randomness derives from its grid coordinates and
// results merge in grid order (see internal/runner).
//
// Experiment ids: table1, table2, fig5..fig15, detection, leash, protocols,
// rushing, loss, mobility, blackhole, adaptive, roc (see -list).
//
// Each experiment prints a markdown table by default, or CSV with -csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"samnet/internal/cli"
	"samnet/internal/experiment"
	"samnet/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id, or 'all'")
		runs      = flag.Int("runs", 10, "simulation runs per condition")
		seed      = flag.Uint64("seed", 2005, "master seed")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = serial)")
		workers   = flag.Int("workers", 0, "deprecated alias of -parallel")
		csv       = flag.Bool("csv", false, "emit CSV instead of markdown")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		outDir    = flag.String("o", "", "also write each experiment to <dir>/<id>.md (or .csv)")
		progress  = flag.Bool("progress", false, "report run progress (runs/s, ETA) on stderr")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	logger, err := cli.NewLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samrepro:", err)
		os.Exit(2)
	}

	if *list {
		for _, d := range experiment.Registry {
			fmt.Printf("%-10s %-10s %s\n", d.ID, d.Kind, d.Title)
		}
		return
	}

	stopProfiles, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	defer stopProfiles()

	pool := *parallel
	if pool == 0 {
		pool = *workers
	}
	cfg := experiment.Config{Runs: *runs, Seed: *seed, Workers: pool}
	var defs []experiment.Definition
	switch *exp {
	case "all":
		defs = experiment.Registry
	case "tables", "figures", "extensions":
		kind := strings.TrimSuffix(*exp, "s")
		for _, d := range experiment.Registry {
			if d.Kind == kind {
				defs = append(defs, d)
			}
		}
	default:
		d, err := experiment.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defs = []experiment.Definition{d}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for i, d := range defs {
		if i > 0 {
			fmt.Println()
		}
		// Per-experiment progress: the hook observes run completion only
		// (counts and wall clock), so the artifact on stdout is
		// bitwise-identical whether or not -progress is set.
		runCfg := cfg
		if *progress {
			runCfg.Progress = obs.NewProgress(os.Stderr, d.ID, 0)
		}
		begin := time.Now()
		art := d.Run(runCfg)
		if pr, ok := runCfg.Progress.(*obs.Progress); ok && pr != nil {
			pr.Finish()
		}
		logger.Info("experiment complete", "id", d.ID, "elapsed", time.Since(begin).Round(time.Millisecond).String())
		var buf strings.Builder
		for j, t := range art.Tables {
			if j > 0 {
				buf.WriteString("\n")
			}
			if *csv {
				buf.WriteString(t.CSV())
			} else {
				buf.WriteString(t.Markdown())
			}
		}
		fmt.Print(buf.String())
		if *outDir != "" {
			ext := ".md"
			if *csv {
				ext = ".csv"
			}
			path := filepath.Join(*outDir, d.ID+ext)
			if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
