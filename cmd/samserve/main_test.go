package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"samnet/internal/service"
)

// startServer runs a newServer-built listener with the given timeouts and
// returns its address.
func startServer(t *testing.T, to timeouts) string {
	t.Helper()
	svc := service.New(service.Config{})
	srv := newServer("127.0.0.1:0", svc.Handler(), to)
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return ln.Addr().String()
}

// TestSlowClientDisconnected is the server-hardening regression test: before
// Read/Write/Idle timeouts were set, a client could open a connection, send a
// partial request, and hold the connection (and its goroutine) forever. Now
// the server must hang up on its own within the configured read timeout.
func TestSlowClientDisconnected(t *testing.T) {
	short := timeouts{
		readHeader: 200 * time.Millisecond,
		read:       300 * time.Millisecond,
		write:      300 * time.Millisecond,
		idle:       300 * time.Millisecond,
	}
	for _, tc := range []struct {
		name string
		send string // partial request the client stalls after
	}{
		{"stalled headers", "POST /v1/analyze HTTP/1.1\r\nHost: x\r\n"},
		{"stalled body", "POST /v1/analyze HTTP/1.1\r\nHost: x\r\n" +
			"Content-Type: application/json\r\nContent-Length: 1000\r\n\r\n{\"routes\":"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addr := startServer(t, short)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write([]byte(tc.send)); err != nil {
				t.Fatal(err)
			}
			// Stall. The server must close the connection on its own; the
			// deadline below only bounds how long a regression would hang
			// this test, it is far beyond the configured timeouts.
			begin := time.Now()
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			_, err = io.ReadAll(conn)
			if err != nil && !isClosedByPeer(err) {
				t.Fatalf("read after stall: %v (want server-side close)", err)
			}
			if waited := time.Since(begin); waited > 5*time.Second {
				t.Fatalf("server kept a stalled connection for %v", waited)
			}
		})
	}
}

// isClosedByPeer reports whether err is the server resetting the stalled
// connection rather than cleanly closing it — both prove the hang-up.
func isClosedByPeer(err error) bool {
	return strings.Contains(err.Error(), "connection reset") ||
		strings.Contains(err.Error(), "closed")
}

// TestHealthyClientUnaffected: the same short-timeout server still answers a
// prompt request, so the hardening cannot break normal traffic.
func TestHealthyClientUnaffected(t *testing.T) {
	addr := startServer(t, timeouts{
		readHeader: 200 * time.Millisecond,
		read:       300 * time.Millisecond,
		write:      300 * time.Millisecond,
		idle:       300 * time.Millisecond,
	})
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestDefaultTimeoutsSet pins that production servers are built with every
// slow-client knob engaged.
func TestDefaultTimeoutsSet(t *testing.T) {
	srv := newServer(":0", nil, defaultTimeouts)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 ||
		srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("server timeouts not fully set: %+v", defaultTimeouts)
	}
}
