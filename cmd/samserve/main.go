// Command samserve runs the SAM wormhole-detection service: a long-running
// HTTP/JSON API that stores trained normal-condition profiles, scores route
// sets against them (singly, in batches over a bounded worker pool with 429
// backpressure, or pipelined over the NDJSON stream on POST
// /v1/detect/stream), replays the paper's step-2 challenge–response probe
// verification against deterministic scenarios (POST /v1/verify), maintains
// the step-3 isolation list (GET /v1/isolation, DELETE
// /v1/isolation/{a}/{b}), and exposes Prometheus-style metrics plus
// structured decision records. It shuts down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	samserve [-addr :8080] [-workers N] [-queue N] [-shards N]
//	         [-decisions N] [-traces N] [-trace-slow 250ms] [-log-requests N]
//	         [-debug-addr :6060] [-log-format text|json]
//	         [-profile name=file.json]...
//	         [-snapshot state.jsonl] [-snapshot-interval 1m]
//	         [-profile-ttl 0] [-max-profiles 0]
//
// -profile preloads a samtrain-produced profile JSON under the given name
// (repeatable), so the server can score immediately without online training.
//
// -snapshot makes the profile store durable: the file is restored on boot
// (a missing file is a fresh start), rewritten atomically every
// -snapshot-interval, and written once more on graceful shutdown, so trained
// profiles and their adaptive means survive restarts.
//
// -profile-ttl evicts profiles idle longer than the given duration;
// -max-profiles caps residency, evicting least-recently-used first. Both
// default to 0 (disabled); evictions surface in the
// samserve_profile_evictions_total metric by reason.
//
// -debug-addr opens a second listener for runtime introspection: net/http/
// pprof under /debug/pprof/, the metrics registry under /metrics, recent
// decision records under /debug/decisions, and recent spans under
// /debug/traces — kept off the service port so the scoring API can face
// untrusted clients while introspection stays internal.
//
// -traces sizes the span ring behind /debug/traces (negative disables
// tracing entirely); -trace-slow retains spans at or over the threshold in a
// dedicated slow ring; -log-requests samples 1-in-N requests to the access
// log with the request's trace id.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"samnet/internal/cli"
	"samnet/internal/obs"
	"samnet/internal/sam"
	"samnet/internal/service"
)

// profileFlags collects repeated -profile name=path pairs.
type profileFlags []struct{ name, path string }

func (p *profileFlags) String() string { return fmt.Sprintf("%d profiles", len(*p)) }

func (p *profileFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return errors.New("want name=file.json")
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "debug listener for pprof, metrics and decisions (empty = disabled)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue        = flag.Int("queue", 0, "worker queue depth (0 = default)")
		shards       = flag.Int("shards", 0, "profile store shards (0 = default)")
		maxBody      = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 8MiB)")
		decisions    = flag.Int("decisions", 0, "decision record buffer (0 = default 256, negative disables capture)")
		traces       = flag.Int("traces", 256, "span ring size behind /debug/traces (negative disables tracing)")
		traceSlow    = flag.Duration("trace-slow", 250*time.Millisecond, "retain spans at or over this duration in the slow ring (0 disables slow capture)")
		logRequests  = flag.Int("log-requests", 0, "log 1-in-N requests with method/path/status/duration/trace id (0 = off)")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		snapshot     = flag.String("snapshot", "", "profile snapshot file: restored on boot, rewritten periodically and on shutdown (empty = no persistence)")
		snapInterval = flag.Duration("snapshot-interval", time.Minute, "interval between periodic snapshot writes")
		profileTTL   = flag.Duration("profile-ttl", 0, "evict profiles idle longer than this (0 = never)")
		maxProfiles  = flag.Int("max-profiles", 0, "cap resident profiles, evicting least recently used (0 = unlimited)")
		profiles     profileFlags
	)
	flag.Var(&profiles, "profile", "preload a trained profile as name=file.json (repeatable)")
	flag.Parse()

	logger, err := cli.NewLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samserve:", err)
		os.Exit(2)
	}

	// Tracing follows the -decisions convention: 0 means the default ring,
	// negative disables. Disabled tracing costs the detect hot path nothing.
	var tracer *obs.Tracer
	if *traces >= 0 {
		size := *traces
		if size == 0 {
			size = 256
		}
		tracer = obs.NewTracer(size, *traceSlow)
	}

	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Shards:         *shards,
		MaxBodyBytes:   *maxBody,
		DecisionBuffer: *decisions,
		Tracer:         tracer,
		ProfileTTL:     *profileTTL,
		MaxProfiles:    *maxProfiles,
		Logger:         logger,
	}
	svc := service.New(cfg)

	// Boot restore happens before -profile preloads, so explicitly preloaded
	// profiles win over whatever the last snapshot held under the same name.
	if *snapshot != "" {
		st, err := svc.RestoreSnapshot(*snapshot)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			logger.Info("no snapshot yet, starting fresh", "path", *snapshot)
		case err != nil:
			// A present-but-unreadable snapshot is a refusal to guess: better
			// to stop than to silently boot empty and overwrite it later.
			fatal(logger, fmt.Errorf("snapshot restore: %w", err))
		default:
			logger.Info("snapshot restored", "path", *snapshot,
				"profiles", st.Restored, "skipped", st.Skipped)
			if st.LastError != nil {
				logger.Warn("snapshot records skipped", "last_cause", st.LastError)
			}
		}
	}

	for _, p := range profiles {
		blob, err := os.ReadFile(p.path)
		if err != nil {
			fatal(logger, err)
		}
		var prof sam.Profile
		if err := json.Unmarshal(blob, &prof); err != nil {
			fatal(logger, fmt.Errorf("%s: %w", p.path, err))
		}
		if err := svc.LoadProfile(p.name, &prof); err != nil {
			fatal(logger, err)
		}
		logger.Info("profile loaded", "name", p.name, "path", p.path, "runs", prof.Runs)
	}

	srv := newServer(*addr, obs.AccessLog(logger, *logRequests, svc.Handler()), defaultTimeouts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = newServer(*debugAddr, debugMux(svc), defaultTimeouts)
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr,
			"endpoints", "/debug/pprof/ /debug/decisions /debug/traces /metrics")
	}

	logger.Info("starting",
		"addr", *addr,
		"workers", *workers, "queue", *queue, "shards", *shards,
		"max_body", *maxBody, "decisions", *decisions,
		"traces", *traces, "trace_slow", *traceSlow, "log_requests", *logRequests,
		"profiles", len(profiles),
		"snapshot", *snapshot, "profile_ttl", *profileTTL, "max_profiles", *maxProfiles)

	// Periodic snapshot writer. Each write is atomic (temp + rename), so a
	// crash between ticks loses at most one interval of adaptive drift, never
	// the file.
	var snapStop, snapDone chan struct{}
	if *snapshot != "" && *snapInterval > 0 {
		snapStop, snapDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(snapDone)
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-t.C:
					if n, err := svc.SaveSnapshot(*snapshot); err != nil {
						logger.Error("snapshot write failed", "path", *snapshot, "err", err)
					} else {
						logger.Debug("snapshot written", "path", *snapshot, "profiles", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	reason := "signal"
	select {
	case err := <-errc:
		fatal(logger, err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "reason", reason)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "err", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	// Final snapshot after the listeners drain — every in-flight adaptive
	// update is in the store by now — and before Close tears the sweeper down.
	if snapStop != nil {
		close(snapStop)
		<-snapDone
	}
	if *snapshot != "" {
		if n, err := svc.SaveSnapshot(*snapshot); err != nil {
			logger.Error("final snapshot failed", "path", *snapshot, "err", err)
		} else {
			logger.Info("final snapshot written", "path", *snapshot, "profiles", n)
		}
	}
	svc.Close()
	logger.Info("stopped")
}

// timeouts bundles an http.Server's slow-client protection knobs so tests
// can shrink them without duplicating server construction.
type timeouts struct {
	readHeader, read, write, idle time.Duration
}

// defaultTimeouts bounds how long a client may dribble a request (read), how
// long a response may take to drain (write; streaming handlers lift their own
// deadline), and how long an idle keep-alive connection is kept.
var defaultTimeouts = timeouts{
	readHeader: 10 * time.Second,
	read:       30 * time.Second,
	write:      2 * time.Minute,
	idle:       2 * time.Minute,
}

// newServer builds both of samserve's listeners: every server gets the full
// timeout set, so a slow or stalled client can never pin a connection (and
// its goroutine) forever.
func newServer(addr string, h http.Handler, to timeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		WriteTimeout:      to.write,
		IdleTimeout:       to.idle,
	}
}

// debugMux assembles the introspection listener: pprof's full suite, the
// service's metrics registry, and the decision record ring.
func debugMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", svc.Registry().Handler())
	// The service mux already routes decision records and traces; reuse it so
	// both listeners serve the identical representation.
	mux.Handle("GET /debug/decisions", svc.Handler())
	mux.Handle("GET /debug/traces", svc.Handler())
	return mux
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
