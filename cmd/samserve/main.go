// Command samserve runs the SAM wormhole-detection service: a long-running
// HTTP/JSON API that stores trained normal-condition profiles, scores route
// sets against them (singly or in batches over a bounded worker pool with
// 429 backpressure), and exposes Prometheus-style metrics plus structured
// decision records. It shuts down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	samserve [-addr :8080] [-workers N] [-queue N] [-shards N]
//	         [-decisions N] [-debug-addr :6060] [-log-format text|json]
//	         [-profile name=file.json]...
//
// -profile preloads a samtrain-produced profile JSON under the given name
// (repeatable), so the server can score immediately without online training.
//
// -debug-addr opens a second listener for runtime introspection: net/http/
// pprof under /debug/pprof/, the metrics registry under /metrics, and recent
// decision records under /debug/decisions — kept off the service port so the
// scoring API can face untrusted clients while introspection stays internal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"samnet/internal/cli"
	"samnet/internal/sam"
	"samnet/internal/service"
)

// profileFlags collects repeated -profile name=path pairs.
type profileFlags []struct{ name, path string }

func (p *profileFlags) String() string { return fmt.Sprintf("%d profiles", len(*p)) }

func (p *profileFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return errors.New("want name=file.json")
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "debug listener for pprof, metrics and decisions (empty = disabled)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue     = flag.Int("queue", 0, "worker queue depth (0 = default)")
		shards    = flag.Int("shards", 0, "profile store shards (0 = default)")
		maxBody   = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 8MiB)")
		decisions = flag.Int("decisions", 0, "decision record buffer (0 = default 256, negative disables capture)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		profiles  profileFlags
	)
	flag.Var(&profiles, "profile", "preload a trained profile as name=file.json (repeatable)")
	flag.Parse()

	logger, err := cli.NewLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samserve:", err)
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Shards:         *shards,
		MaxBodyBytes:   *maxBody,
		DecisionBuffer: *decisions,
	}
	svc := service.New(cfg)
	for _, p := range profiles {
		blob, err := os.ReadFile(p.path)
		if err != nil {
			fatal(logger, err)
		}
		var prof sam.Profile
		if err := json.Unmarshal(blob, &prof); err != nil {
			fatal(logger, fmt.Errorf("%s: %w", p.path, err))
		}
		if err := svc.LoadProfile(p.name, &prof); err != nil {
			fatal(logger, err)
		}
		logger.Info("profile loaded", "name", p.name, "path", p.path, "runs", prof.Runs)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(svc),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr,
			"endpoints", "/debug/pprof/ /debug/decisions /metrics")
	}

	logger.Info("starting",
		"addr", *addr,
		"workers", *workers, "queue", *queue, "shards", *shards,
		"max_body", *maxBody, "decisions", *decisions,
		"profiles", len(profiles))

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	reason := "signal"
	select {
	case err := <-errc:
		fatal(logger, err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "reason", reason)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "err", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	svc.Close()
	logger.Info("stopped")
}

// debugMux assembles the introspection listener: pprof's full suite, the
// service's metrics registry, and the decision record ring.
func debugMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", svc.Registry().Handler())
	// The service mux already routes decision records; reuse it so both
	// listeners serve the identical representation.
	mux.Handle("GET /debug/decisions", svc.Handler())
	return mux
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
