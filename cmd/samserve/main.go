// Command samserve runs the SAM wormhole-detection service: a long-running
// HTTP/JSON API that stores trained normal-condition profiles, scores route
// sets against them (singly or in batches over a bounded worker pool with
// 429 backpressure), and exposes Prometheus-style metrics. It shuts down
// gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	samserve [-addr :8080] [-workers N] [-queue N] [-shards N]
//	         [-profile name=file.json]...
//
// -profile preloads a samtrain-produced profile JSON under the given name
// (repeatable), so the server can score immediately without online training.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"samnet/internal/sam"
	"samnet/internal/service"
)

// profileFlags collects repeated -profile name=path pairs.
type profileFlags []struct{ name, path string }

func (p *profileFlags) String() string { return fmt.Sprintf("%d profiles", len(*p)) }

func (p *profileFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return errors.New("want name=file.json")
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue    = flag.Int("queue", 0, "worker queue depth (0 = default)")
		shards   = flag.Int("shards", 0, "profile store shards (0 = default)")
		maxBody  = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 8MiB)")
		profiles profileFlags
	)
	flag.Var(&profiles, "profile", "preload a trained profile as name=file.json (repeatable)")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		Shards:       *shards,
		MaxBodyBytes: *maxBody,
	})
	for _, p := range profiles {
		blob, err := os.ReadFile(p.path)
		if err != nil {
			fatal(err)
		}
		var prof sam.Profile
		if err := json.Unmarshal(blob, &prof); err != nil {
			fatal(fmt.Errorf("%s: %w", p.path, err))
		}
		if err := svc.LoadProfile(p.name, &prof); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "samserve: loaded profile %q from %s\n", p.name, p.path)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "samserve: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "samserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "samserve: shutdown:", err)
	}
	svc.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samserve:", err)
	os.Exit(1)
}
